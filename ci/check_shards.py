#!/usr/bin/env python3
"""Assert that merged shard output is byte-identical to an unsharded run.

Usage: check_shards.py FULL.json OTHER.json [OTHER.json ...]

Every result cell (one JSON line carrying a "seq" field) of the other
files, reordered by global sequence number, must equal the corresponding
cell of the full run byte-for-byte — the sweep engine's determinism
contract. OTHER may be individual shard files or a coordinator-merged
file (which simply contains every cell already in order). Shared by the
per-push CI quick sweep and the scale-nightly workflow.

Exception: keys in VOLATILE_KEYS are wall-clock measurements, not
computed results — deterministic in *presence* but not in value (the
sharding contract pins verification *verdicts*, not how long a verify
took). Their values are masked on both sides before comparison, so a
run that gained or lost such a key still fails.
"""

import re
import sys

# Wall-clock fields recorded for observability; byte-identity applies to
# everything else in the cell.
VOLATILE_KEYS = ("verify_ms",)


def normalize(line):
    for key in VOLATILE_KEYS:
        line = re.sub(r'"%s": [0-9]+' % key, '"%s": <volatile>' % key, line)
    return line


def cells(path):
    with open(path) as f:
        return [normalize(line.strip().rstrip(",")) for line in f if '"seq"' in line]


def main(argv):
    if len(argv) < 3:
        sys.exit("usage: check_shards.py FULL.json OTHER.json [OTHER.json ...]")
    full = cells(argv[1])
    parts = []
    for path in argv[2:]:
        parts.extend(cells(path))
    parts.sort(key=lambda l: int(re.search(r'"seq": (\d+)', l).group(1)))
    if parts != full:
        for a, b in zip(full, parts):
            if a != b:
                print("DIVERGENT CELL:\nfull : %s\nmerge: %s" % (a, b))
                break
        if len(parts) != len(full):
            print("cell count: full run %d, merged shards %d" % (len(full), len(parts)))
        sys.exit("merged shard output differs from unsharded run")
    print("OK: %d cells byte-identical (volatile keys masked: %s)"
          % (len(full), ", ".join(VOLATILE_KEYS)))


if __name__ == "__main__":
    main(sys.argv)
