#!/usr/bin/env python3
"""Assert that merged shard output is byte-identical to an unsharded run.

Usage: check_shards.py FULL.json OTHER.json [OTHER.json ...]

Every result cell (one JSON line carrying a "seq" field) of the other
files, reordered by global sequence number, must equal the corresponding
cell of the full run byte-for-byte — the sweep engine's determinism
contract. OTHER may be individual shard files or a coordinator-merged
file (which simply contains every cell already in order). Shared by the
per-push CI quick sweep and the scale-nightly workflow.

OTHER may also be a coordinator job journal (journal.jsonl): its "done"
lines wrap the verbatim canonical cell bytes in scheduling telemetry
({"type": "done", "shard": ..., "lease_ms": ..., "steals": ...,
"cell": {...}}), which is stripped before comparison — so the nightly
kill-and-resume leg can gate the durable store itself, not just its
re-encoded output. Lease/expire audit lines carry no "seq" and are
ignored.

Exception: keys in VOLATILE_KEYS are wall-clock or scheduling
measurements, not computed results — deterministic in *presence* but not
in value (the sharding contract pins verification *verdicts*, not how
long a verify took; which shard computed a cell, how long its lease ran
and how often it was stolen depend on crash timing). Their values are
masked on both sides before comparison, so a run that gained or lost
such a key still fails.
"""

import re
import sys

# Wall-clock / scheduling fields recorded for observability;
# byte-identity applies to everything else in the cell. lease_ms and
# steals normally live in the journal wrapper (removed by unwrap), but
# masking them too keeps the contract explicit should they ever appear
# in a result column.
VOLATILE_KEYS = ("verify_ms", "lease_ms", "steals")


def normalize(line):
    for key in VOLATILE_KEYS:
        line = re.sub(r'"%s": [0-9]+' % key, '"%s": <volatile>' % key, line)
    return line


def unwrap(line):
    """Strip the telemetry wrapper of a journal done-line.

    All telemetry keys precede "cell", and the cell bytes are embedded
    verbatim, so the cell is exactly the slice from the brace after
    '"cell": ' to just before the line's final closing brace.
    """
    if not line.startswith('{"type": "done"'):
        return line
    m = re.search(r'"cell": ', line)
    if not m:
        return line
    return line[m.end():line.rfind("}")]


def cells(path):
    out = []
    with open(path) as f:
        for line in f:
            line = unwrap(line.strip().rstrip(","))
            if '"seq"' in line:
                out.append(normalize(line))
    return out


def main(argv):
    if len(argv) < 3:
        sys.exit("usage: check_shards.py FULL.json OTHER.json [OTHER.json ...]")
    full = cells(argv[1])
    parts = []
    for path in argv[2:]:
        parts.extend(cells(path))
    parts.sort(key=lambda l: int(re.search(r'"seq": (\d+)', l).group(1)))
    if parts != full:
        for a, b in zip(full, parts):
            if a != b:
                print("DIVERGENT CELL:\nfull : %s\nmerge: %s" % (a, b))
                break
        if len(parts) != len(full):
            print("cell count: full run %d, merged shards %d" % (len(full), len(parts)))
        sys.exit("merged shard output differs from unsharded run")
    print("OK: %d cells byte-identical (volatile keys masked: %s)"
          % (len(full), ", ".join(VOLATILE_KEYS)))


if __name__ == "__main__":
    main(sys.argv)
