package gncg

import (
	"encoding/json"
	"fmt"
	"math"
)

// InstanceJSON is the on-disk interchange format for a game instance and
// optional strategy profile, consumed by the cmd/gncg tool. Weights may
// be the string "inf" for unbuyable pairs.
type InstanceJSON struct {
	Alpha   float64       `json:"alpha"`
	Weights [][]jsonFloat `json:"weights"`
	// Owned lists purchases as [owner, to] pairs; optional.
	Owned [][2]int `json:"owned,omitempty"`
	// Traffic optionally carries the demand matrix of the traffic-weighted
	// extension (row u = agent u's demands); omitted under the paper's
	// uniform model.
	Traffic [][]float64 `json:"traffic,omitempty"`
}

// jsonFloat marshals +Inf as the string "inf".
type jsonFloat float64

// MarshalJSON renders +Inf as "inf".
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(f), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON accepts numbers or the string "inf".
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if s == "inf" || s == "+inf" || s == "Inf" {
			*f = jsonFloat(math.Inf(1))
			return nil
		}
		return fmt.Errorf("gncg: invalid weight string %q", s)
	}
	var x float64
	if err := json.Unmarshal(b, &x); err != nil {
		return err
	}
	*f = jsonFloat(x)
	return nil
}

// MarshalInstance serializes a game and profile to JSON.
func MarshalInstance(g *Game, p Profile) ([]byte, error) {
	n := g.N()
	ins := InstanceJSON{Alpha: g.Alpha, Weights: make([][]jsonFloat, n)}
	for i := 0; i < n; i++ {
		row := make([]jsonFloat, n)
		for j := 0; j < n; j++ {
			row[j] = jsonFloat(g.Host.Weight(i, j))
		}
		ins.Weights[i] = row
	}
	if p.N() == n {
		for _, e := range p.OwnedEdges() {
			ins.Owned = append(ins.Owned, [2]int{e.Owner, e.To})
		}
	}
	if g.HasTraffic() {
		ins.Traffic = make([][]float64, n)
		for u := 0; u < n; u++ {
			ins.Traffic[u] = make([]float64, n)
			for v := 0; v < n; v++ {
				ins.Traffic[u][v] = g.Traffic(u, v)
			}
		}
	}
	return json.MarshalIndent(ins, "", "  ")
}

// UnmarshalInstance parses a serialized instance back into a game and
// profile. If the instance listed no purchases, the profile is empty.
func UnmarshalInstance(data []byte) (*Game, Profile, error) {
	var ins InstanceJSON
	if err := json.Unmarshal(data, &ins); err != nil {
		return nil, Profile{}, err
	}
	if ins.Alpha <= 0 {
		return nil, Profile{}, fmt.Errorf("gncg: alpha must be positive, got %v", ins.Alpha)
	}
	n := len(ins.Weights)
	w := make([][]float64, n)
	for i := range w {
		if len(ins.Weights[i]) != n {
			return nil, Profile{}, fmt.Errorf("gncg: weight row %d has %d entries, want %d", i, len(ins.Weights[i]), n)
		}
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = float64(ins.Weights[i][j])
		}
	}
	h, err := HostFromMatrix(w)
	if err != nil {
		return nil, Profile{}, err
	}
	g := NewGame(h, ins.Alpha)
	if ins.Traffic != nil {
		if err := g.SetTraffic(ins.Traffic); err != nil {
			return nil, Profile{}, err
		}
	}
	var owned []OwnedEdge
	for _, e := range ins.Owned {
		owned = append(owned, OwnedEdge{Owner: e[0], To: e[1]})
	}
	p, err := ProfileFromOwnedEdges(n, owned)
	if err != nil {
		return nil, Profile{}, err
	}
	return g, p, nil
}
